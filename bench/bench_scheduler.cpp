// Scheduler bench (ISSUE 4): naive dynamic dispatch (one shared
// counter) vs the conflict-aware batch plan (level buckets,
// vertex-disjoint waves, OM-sorted chunks with stealing), across worker
// counts, on two batch shapes:
//
//   uniform — batch edges sampled uniformly over the vertex set; little
//             endpoint sharing, so planning mostly buys locality;
//   hub     — batch edges concentrated on a few dozen hub vertices, the
//             adversarial shape where naive dispatch makes workers
//             collide on the hubs' locks and churn the same O_k. This
//             is where wave scheduling pays.
//
// Protocol: per cell, insert the batch then remove it (returning to the
// base graph) `reps` times; report the mean per-phase time. Emits
// BENCH_scheduler.json so planned-vs-naive is tracked across PRs; the
// CI perf-smoke step validates the schema on a small workload.
//
// Honours PARCORE_BENCH_SCALE / _REPS / _FAST / _JSON_DIR.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "gen/generators.h"
#include "graph/edge_list.h"
#include "harness.h"

using namespace parcore;
using namespace parcore::bench;

namespace {

struct SchedWorkload {
  std::string name;
  std::size_t n = 0;
  std::vector<Edge> base;
  std::vector<Edge> batch;
};

// Batch edges not already in `have`; keeps the insert->remove round
// trip exact (every batch edge applies in both directions).
SchedWorkload uniform_workload(std::size_t n, std::size_t base_m,
                               std::size_t batch_m) {
  SchedWorkload w;
  w.name = "uniform";
  w.n = n;
  Rng rng(0x5eed001);
  w.base = gen_erdos_renyi(n, base_m, rng);
  canonicalize_edges(w.base);
  std::set<std::uint64_t> have;
  for (const Edge& e : w.base) have.insert(edge_key(e));
  while (w.batch.size() < batch_m) {
    const Edge e = canonical(Edge{static_cast<VertexId>(rng.bounded(n)),
                                  static_cast<VertexId>(rng.bounded(n))});
    if (e.u != e.v && have.insert(edge_key(e)).second) w.batch.push_back(e);
  }
  return w;
}

SchedWorkload hub_workload(std::size_t n, std::size_t base_m,
                           std::size_t batch_m, std::size_t hubs) {
  SchedWorkload w;
  w.name = "hub";
  w.n = n;
  Rng rng(0x5eed002);
  w.base = gen_erdos_renyi(n, base_m, rng);
  canonicalize_edges(w.base);
  std::set<std::uint64_t> have;
  for (const Edge& e : w.base) have.insert(edge_key(e));
  while (w.batch.size() < batch_m) {
    const auto hub = static_cast<VertexId>(rng.bounded(hubs));
    const auto leaf =
        static_cast<VertexId>(hubs + rng.bounded(n - hubs));
    const Edge e = canonical(Edge{hub, leaf});
    if (have.insert(edge_key(e)).second) w.batch.push_back(e);
  }
  return w;
}

struct CellResult {
  RunStats insert_ms;
  RunStats remove_ms;
  double insert_median_ms = 0.0;
  double remove_median_ms = 0.0;
  PlanStats insert_plan;  // stats of the last planned insert batch
};

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

/// Times naive and planned dispatch for one (workload, workers) cell
/// with their reps INTERLEAVED — naive cycle, planned cycle, naive
/// cycle, ... — so slow machine-load drift hits both modes equally.
/// Each mode keeps its own maintainer+graph across its reps (the
/// insert-then-remove cycle returns each graph to base).
std::pair<CellResult, CellResult> time_cell_pair(const SchedWorkload& w,
                                                 ThreadTeam& team,
                                                 int workers, int reps) {
  DynamicGraph g_naive = DynamicGraph::from_edges(w.n, w.base);
  DynamicGraph g_plan = DynamicGraph::from_edges(w.n, w.base);
  ParallelOrderMaintainer::Options naive_opts, plan_opts;
  naive_opts.schedule = ScheduleMode::kDynamic;
  plan_opts.schedule = ScheduleMode::kPlan;
  ParallelOrderMaintainer m_naive(g_naive, team, naive_opts);
  ParallelOrderMaintainer m_plan(g_plan, team, plan_opts);

  CellResult naive, plan;
  std::vector<double> nins, nrem, pins, prem;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t;
    m_naive.insert_batch(w.batch, workers);
    nins.push_back(t.elapsed_ms());
    t.reset();
    m_naive.remove_batch(w.batch, workers);
    nrem.push_back(t.elapsed_ms());

    t.reset();
    m_plan.insert_batch(w.batch, workers);
    pins.push_back(t.elapsed_ms());
    plan.insert_plan = m_plan.last_plan_stats();
    t.reset();
    m_plan.remove_batch(w.batch, workers);
    prem.push_back(t.elapsed_ms());
  }
  naive.insert_ms = RunStats::from(nins);
  naive.remove_ms = RunStats::from(nrem);
  plan.insert_ms = RunStats::from(pins);
  plan.remove_ms = RunStats::from(prem);
  // Medians, not means, drive the speedup summary: single-run scheduler
  // jitter on shared machines skews means by 10%+.
  naive.insert_median_ms = median_of(nins);
  naive.remove_median_ms = median_of(nrem);
  plan.insert_median_ms = median_of(pins);
  plan.remove_median_ms = median_of(prem);
  return {naive, plan};
}

}  // namespace

int main() {
  const BenchEnv env = bench_env();
  // Pinned synthetic sizes (scaled): the committed baseline uses the
  // defaults, the CI smoke uses PARCORE_BENCH_FAST. Sized so the
  // per-vertex state arrays outgrow cache — that is where the planner's
  // bucketed order pays.
  const double scale = env.fast ? 0.03 : env.scale;
  const auto n = static_cast<std::size_t>(100000 * scale) + 500;
  const std::size_t base_m = 5 * n;
  const std::size_t batch_m =
      std::max<std::size_t>(500, static_cast<std::size_t>(50000 * scale));
  const std::size_t hubs = 64;
  // PARCORE_BENCH_REPS is honoured when set; the unset default (1) is
  // raised to 9 because the medians below need a real sample.
  const int reps = env.fast ? 3 : (env.reps > 1 ? env.reps : 9);

  const std::vector<SchedWorkload> workloads{
      uniform_workload(n, base_m, batch_m),
      hub_workload(n, base_m, batch_m, hubs),
  };
  const std::vector<int> worker_counts{1, 2, 4, 8};

  ThreadTeam team(8);
  std::printf("== scheduler: naive vs planned dispatch "
              "(n=%zu, base m=%zu, batch %zu, %zu hubs, %d reps) ==\n\n",
              n, base_m, batch_m, hubs, reps);

  Json rows = Json::array();
  Table table({"workload", "mode", "workers", "insert ms", "remove ms",
               "cycle ms", "waves", "overflow", "steals"});
  // speedups[workload][workers] = naive_cycle / planned_cycle
  Json summary = Json::object();

  for (const SchedWorkload& w : workloads) {
    for (std::size_t wi = 0; wi < worker_counts.size(); ++wi) {
      const int workers = worker_counts[wi];
      const auto [naive, plan] = time_cell_pair(w, team, workers, reps);
      const double naive_cycle =
          naive.insert_median_ms + naive.remove_median_ms;
      const double plan_cycle = plan.insert_median_ms + plan.remove_median_ms;
      const double speedup = naive_cycle / std::max(plan_cycle, 1e-9);
      struct ModeRow {
        const char* name;
        const CellResult* r;
        double cycle;
      };
      for (const ModeRow& mr : {ModeRow{"naive", &naive, naive_cycle},
                                ModeRow{"planned", &plan, plan_cycle}}) {
        const CellResult& r = *mr.r;
        table.add_row(
            {w.name, mr.name, std::to_string(workers),
             fmt(r.insert_median_ms, 2), fmt(r.remove_median_ms, 2),
             fmt(mr.cycle, 2), std::to_string(r.insert_plan.waves),
             std::to_string(r.insert_plan.overflow_edges),
             std::to_string(std::uint64_t{r.insert_plan.steals})});
        Json row = Json::object()
                       .set("workload", w.name)
                       .set("mode", mr.name)
                       .set("workers", workers)
                       .set("insert_ms", r.insert_median_ms)
                       .set("remove_ms", r.remove_median_ms)
                       .set("cycle_ms", mr.cycle)
                       .set("insert_mean_ms", r.insert_ms.mean)
                       .set("remove_mean_ms", r.remove_ms.mean)
                       .set("insert_ci95_ms", r.insert_ms.ci95)
                       .set("plan_buckets", std::uint64_t{r.insert_plan.buckets})
                       .set("plan_waves", std::uint64_t{r.insert_plan.waves})
                       .set("plan_overflow_edges",
                            std::uint64_t{r.insert_plan.overflow_edges})
                       .set("plan_locality_only", r.insert_plan.locality_only)
                       .set("plan_steals", std::uint64_t{r.insert_plan.steals});
        if (&r == &plan) {
          row.set("speedup_vs_naive", speedup);
          summary.set(w.name + "_speedup_w" + std::to_string(workers),
                      speedup);
        }
        rows.push(row);
      }
      std::fflush(stdout);
    }
  }
  table.print();

  Json payload = Json::object()
                     .set("bench", "scheduler")
                     .set("n", std::uint64_t{n})
                     .set("base_edges", std::uint64_t{base_m})
                     .set("batch_edges", std::uint64_t{batch_m})
                     .set("hubs", std::uint64_t{hubs})
                     .set("reps", reps)
                     .set("scale", scale)
                     .set("rows", rows)
                     .set("summary", summary);
  write_bench_json("scheduler", payload);
  return 0;
}
