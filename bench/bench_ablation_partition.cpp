// Ablation: batch partitioning. The paper's Algorithm 5 splits ΔE into
// P static contiguous parts; our default hands edges out dynamically
// from a shared counter. This bench quantifies the difference (dynamic
// wins when per-edge costs are skewed, e.g. a few edges with large V+).
// The conflict-aware planner gets its own dedicated bench with tailored
// workloads (bench_scheduler); here it rides along for context.
#include <cstdio>

#include "harness.h"

using namespace parcore;
using namespace parcore::bench;

namespace {

AlgoTimes time_with_partition(const PreparedWorkload& w, ThreadTeam& team,
                              int workers, int reps, ScheduleMode mode) {
  DynamicGraph g = base_graph(w);
  ParallelOrderMaintainer::Options opts;
  opts.schedule = mode;
  ParallelOrderMaintainer m(g, team, opts);
  std::vector<double> ins, rem;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    m.insert_batch(w.batch, workers);
    ins.push_back(t.elapsed_ms());
    t.reset();
    m.remove_batch(w.batch, workers);
    rem.push_back(t.elapsed_ms());
  }
  return AlgoTimes{RunStats::from(ins), RunStats::from(rem)};
}

}  // namespace

int main() {
  const BenchEnv env = bench_env();
  ThreadTeam team(env.max_workers);
  const int workers = env.max_workers;

  std::printf("== Ablation: static (paper Alg. 5) vs dynamic partition ==\n");
  std::printf("(scale %.2f, batch ~%zu, %d workers, ms)\n\n", env.scale,
              env.batch, workers);

  Table table({"graph", "insert static", "insert dynamic", "insert plan",
               "remove static", "remove dynamic", "remove plan"});
  for (const SuiteSpec& spec : scalability_suite()) {
    PreparedWorkload w = prepare_workload(spec, env.scale, env.batch);
    AlgoTimes st =
        time_with_partition(w, team, workers, env.reps, ScheduleMode::kStatic);
    AlgoTimes dy =
        time_with_partition(w, team, workers, env.reps, ScheduleMode::kDynamic);
    AlgoTimes pl =
        time_with_partition(w, team, workers, env.reps, ScheduleMode::kPlan);
    table.add_row({spec.name, fmt(st.insert_ms.mean), fmt(dy.insert_ms.mean),
                   fmt(pl.insert_ms.mean), fmt(st.remove_ms.mean),
                   fmt(dy.remove_ms.mean), fmt(pl.remove_ms.mean)});
    std::fflush(stdout);
  }
  table.print();
  return 0;
}
